// Package blaze is a Go reproduction of Blaze (Kim & Swanson, SC22), an
// out-of-core graph processing system optimized for fast NVMe SSDs.
//
// Blaze processes graphs whose adjacency lives on storage while keeping
// vertex data in memory (the semi-external model). Its EdgeMap/VertexMap
// API (from Ligra) is extended with explicit scatter and gather functions
// whose value flow runs through *online binning*, an atomic-free
// scatter-gather scheme that keeps fast SSDs saturated.
//
// A minimal BFS:
//
//	rt := blaze.New(blaze.WithComputeWorkers(8))
//	rt.Run(func(c *blaze.Ctx) {
//	    g, _ := c.GraphFromEdges("toy", 5, []uint32{0,0,1}, []uint32{1,2,3})
//	    parent := make([]int32, g.NumVertices())
//	    for i := range parent { parent[i] = -1 }
//	    parent[0] = 0
//	    f := blaze.Single(g.NumVertices(), 0)
//	    for !f.Empty() {
//	        var err error
//	        f, err = blaze.EdgeMap(c, g, f,
//	            func(s, d uint32) uint32 { return s },
//	            func(d uint32, v uint32) bool {
//	                if parent[d] == -1 { parent[d] = int32(v); return true }
//	                return false
//	            },
//	            func(d uint32) bool { return parent[d] == -1 },
//	            true)
//	        if err != nil {
//	            // an unrecoverable device error; the pipeline has shut
//	            // down cleanly and the traversal state is partial
//	            break
//	        }
//	    }
//	})
//
// The Runtime can execute under two clocks: real goroutines with wall-clock
// device pacing (the default, used by applications), or a deterministic
// virtual-time simulation (WithSimulatedTime, used by the benchmark harness
// to reproduce the paper's figures on arbitrary hardware).
package blaze

import (
	"fmt"

	"blaze/algo"
	"blaze/gen"
	"blaze/internal/cluster"
	"blaze/internal/costmodel"
	"blaze/internal/engine"
	"blaze/internal/exec"
	"blaze/internal/fault"
	"blaze/internal/frontier"
	"blaze/internal/graph"
	"blaze/internal/metrics"
	"blaze/internal/pagecache"
	"blaze/internal/session"
	"blaze/internal/ssd"
)

// Graph is a runtime graph handle: in-memory index plus device-resident
// adjacency.
type Graph = engine.Graph

// VertexSubset is a frontier (sparse or dense, switching automatically).
type VertexSubset = frontier.VertexSubset

// NewVertexSubset returns an empty frontier over n vertices.
func NewVertexSubset(n uint32) *VertexSubset { return frontier.NewVertexSubset(n) }

// Single returns a frontier holding one vertex.
func Single(n, v uint32) *VertexSubset { return frontier.Single(n, v) }

// All returns a frontier with every vertex active.
func All(n uint32) *VertexSubset { return frontier.All(n) }

// Runtime owns the execution context, devices, and engine configuration.
type Runtime struct {
	ctx     exec.Context
	cfg     engine.Config
	profile ssd.Profile
	numDev  int
	devOpts []ssd.DeviceOptions
	stats   *metrics.IOStats
	tl      *metrics.Timeline
	mem     *metrics.MemAccount
	elapsed int64

	// Scale-out knobs (WithScaleout / WithNetwork).
	machines int
	netBW    float64
	netLatNs int64

	// Concurrent-session knobs (RunConcurrent).
	interleaveSeed uint64
	drrQuantum     int64
	noCoalesce     bool
	noDRR          bool
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithSimulatedTime switches to the deterministic virtual-time backend.
func WithSimulatedTime() Option {
	return func(rt *Runtime) { rt.ctx = exec.NewSim() }
}

// WithComputeWorkers sets the computation proc count, split equally between
// scatter and gather (the paper's default ratio).
func WithComputeWorkers(n int) Option {
	return func(rt *Runtime) { rt.cfg = rt.cfg.WithThreads(n, 0.5) }
}

// WithBinningRatio splits compute workers between scatter and gather
// (scatter fraction; 0.5 = equal).
func WithBinningRatio(ratio float64) Option {
	return func(rt *Runtime) {
		rt.cfg = rt.cfg.WithThreads(rt.cfg.ScatterProcs+rt.cfg.GatherProcs, ratio)
	}
}

// WithBinCount sets the number of online bins.
func WithBinCount(n int) Option {
	return func(rt *Runtime) { rt.cfg.BinCount = n }
}

// WithBinSpace sets the total bin memory budget in bytes.
func WithBinSpace(bytes int64) Option {
	return func(rt *Runtime) { rt.cfg.BinSpaceBytes = bytes }
}

// WithIOBufferSpace sets the static IO buffer budget in bytes (default
// 64 MB, as in the paper).
func WithIOBufferSpace(bytes int64) Option {
	return func(rt *Runtime) { rt.cfg.IOBufferBytes = bytes }
}

// DeviceProfile describes an SSD's read-bandwidth envelope (Table I of the
// paper). Obtain one from OptaneSSD, NANDSSD, ZNANDSSD, or Samsung980Pro,
// or derive a scaled one with its Scale method.
type DeviceProfile = ssd.Profile

// OptaneSSD returns the Intel Optane SSD DC P4800X profile (the paper's
// primary fast NVMe drive).
func OptaneSSD() DeviceProfile { return ssd.OptaneSSD }

// NANDSSD returns the Intel DC S3520 profile (the paper's slow baseline).
func NANDSSD() DeviceProfile { return ssd.NANDSSD }

// ZNANDSSD returns the Samsung Z-NAND SZ983 profile.
func ZNANDSSD() DeviceProfile { return ssd.ZNAND }

// Samsung980Pro returns the Samsung 980 Pro profile.
func Samsung980Pro() DeviceProfile { return ssd.VNAND }

// WithDevices sets the device count and bandwidth profile used for graphs
// created by this runtime (default: one Optane SSD).
func WithDevices(n int, prof DeviceProfile) Option {
	return func(rt *Runtime) { rt.numDev = n; rt.profile = prof }
}

// CachePolicy selects the page-cache eviction policy: CacheCLOCK (the
// default sharded second-chance policy with a ghost list for scan
// resistance) or CacheLRU (the single-shard global-recency ablation
// baseline, as modeled for FlashGraph).
type CachePolicy = pagecache.Policy

// CacheCLOCK and CacheLRU are the WithPageCachePolicy policies.
const (
	CacheCLOCK = pagecache.PolicyCLOCK
	CacheLRU   = pagecache.PolicyLRU
)

// WithPageCache enables a sharded CLOCK page cache of the given byte
// capacity that persists across EdgeMap calls and can serve merged
// multi-page reads fully or partially (trimming the device read to the
// uncached middle span). The paper's Blaze has no such cache (random
// IO-buffer eviction only) and names better eviction policies as future
// work; enabling it closes the gap to FlashGraph on high-locality graphs
// like sk2005 at the price of memory (see the pagecache ablation).
//
// Cached pages are keyed by graph name: graphs created under the same
// runtime must use distinct names (a reload under the same name
// deliberately reuses the previous entries).
func WithPageCache(bytes int64) Option {
	return WithPageCachePolicy(bytes, CacheCLOCK)
}

// WithPageCachePolicy is WithPageCache with an explicit eviction policy
// (the pagecache ablation compares CacheLRU and CacheCLOCK head to head).
func WithPageCachePolicy(bytes int64, policy CachePolicy) Option {
	return func(rt *Runtime) { rt.cfg.PageCache = pagecache.NewWithPolicy(bytes, policy) }
}

// FaultPolicy is a deterministic device-fault model for testing failure
// handling: per-page transient and permanent read-error rates plus optional
// latency spikes, all keyed by a seed. The zero value injects nothing.
type FaultPolicy = fault.Policy

// WithFaultPolicy injects deterministic device faults into every graph
// created by this runtime. Transient errors are absorbed by the device
// retry policy (with backoff charged in model time); permanent errors
// surface as EdgeMap errors after a clean pipeline shutdown.
func WithFaultPolicy(p FaultPolicy) Option {
	return func(rt *Runtime) {
		rt.devOpts = append(rt.devOpts, p.DeviceOptions())
	}
}

// WithRetryPolicy overrides how device reads retry transient errors:
// maxRetries bounded attempts with exponential backoff starting at
// backoffNs (charged as device busy time).
func WithRetryPolicy(maxRetries int, backoffNs int64) Option {
	return func(rt *Runtime) {
		rt.devOpts = append(rt.devOpts, ssd.DeviceOptions{
			Retry: &ssd.RetryPolicy{MaxRetries: maxRetries, BackoffNs: backoffNs},
		})
	}
}

// WithScaleout partitions built-in queries (Ctx.PageRank) across m
// destination-partitioned machines, each with its own device array of
// WithDevices size, exchanging sparse vertex deltas over a modeled
// interconnect after every round (see internal/cluster). m <= 1 keeps the
// single-machine engine.
func WithScaleout(m int) Option {
	return func(rt *Runtime) { rt.machines = m }
}

// WithNetwork sets the scale-out interconnect model: each link direction's
// bandwidth in bytes/second and the per-message latency in nanoseconds
// (0 keeps the defaults, 25 Gb/s and 10 µs). Only meaningful together with
// WithScaleout.
func WithNetwork(bandwidthBytesPerSec float64, latencyNs int64) Option {
	return func(rt *Runtime) { rt.netBW = bandwidthBytesPerSec; rt.netLatNs = latencyNs }
}

// WithInterleaveSeed sets the deterministic interleave seed RunConcurrent
// uses under the simulated backend: a fixed seed reproduces the exact same
// concurrent schedule run after run, different seeds exercise different
// interleavings (default 1).
func WithInterleaveSeed(seed uint64) Option {
	return func(rt *Runtime) { rt.interleaveSeed = seed }
}

// WithDRRQuantum sets the deficit-round-robin bandwidth-sharing quantum in
// bytes for concurrent sessions (default 1 MB): how far one query may run
// ahead of its most-starved peer on a backlogged device before its
// submissions are delayed.
func WithDRRQuantum(bytes int64) Option {
	return func(rt *Runtime) { rt.drrQuantum = bytes }
}

// WithCoalescing toggles cross-query IO coalescing in concurrent sessions
// (default on): overlapping page runs requested by different queries cost
// one device read.
func WithCoalescing(enabled bool) Option {
	return func(rt *Runtime) { rt.noCoalesce = !enabled }
}

// WithDRRSharing toggles deficit-round-robin bandwidth sharing between
// concurrent queries (default on).
func WithDRRSharing(enabled bool) Option {
	return func(rt *Runtime) { rt.noDRR = !enabled }
}

// WithCostModel overrides the virtual-time cost model.
func WithCostModel(m costmodel.Model) Option {
	return func(rt *Runtime) { rt.cfg.Model = m }
}

// WithTimeline enables bandwidth timeline collection at the given bucket
// width in nanoseconds.
func WithTimeline(bucketNs int64) Option {
	return func(rt *Runtime) { rt.tl = metrics.NewTimeline(bucketNs) }
}

// New returns a Runtime. Defaults: real-time backend, one simulated Optane
// SSD, 16 compute workers split 8/8, 1024 bins, 64 MB IO buffers.
func New(opts ...Option) *Runtime {
	rt := &Runtime{
		ctx:     exec.NewReal(),
		cfg:     engine.DefaultConfig(1 << 22),
		profile: ssd.OptaneSSD,
		numDev:  1,
		mem:     metrics.NewMemAccount(),
	}
	for _, o := range opts {
		o(rt)
	}
	statDevs := rt.numDev
	if rt.machines > 1 {
		// Scale-out graphs stripe each machine's partition over its own
		// device array; device IDs run to machines*numDev.
		statDevs *= rt.machines
	}
	rt.stats = metrics.NewIOStats(statDevs)
	rt.cfg.Stats = rt.stats
	rt.cfg.Mem = rt.mem
	if !rt.ctx.IsSim() {
		// The run pool retains IO buffers, bin buffer pairs, and stagers
		// across EdgeMap rounds (reset, not reallocated) so iterative
		// algorithms stop churning the GC. Virtual-time runs keep the seed
		// allocation pattern for byte-identical figures.
		rt.cfg.Pool = engine.NewPool()
	}
	return rt
}

// Ctx is the per-run handle passed to the function given to Run. All graph
// loading and EdgeMap/VertexMap calls must happen through it.
type Ctx struct {
	rt *Runtime
	P  exec.Proc
	// cfg, when non-nil, is this Ctx's per-query engine config (concurrent
	// sessions give every query its own identity, scheduler table, and
	// attributed counters); nil falls back to the runtime config.
	cfg *engine.Config
}

func (c *Ctx) config() engine.Config {
	if c.cfg != nil {
		return *c.cfg
	}
	return c.rt.cfg
}

// Run executes fn under the runtime's clock and records the makespan.
func (rt *Runtime) Run(fn func(*Ctx)) {
	rt.ctx.Run("main", func(p exec.Proc) {
		fn(&Ctx{rt: rt, P: p})
		rt.elapsed = p.Now()
	})
	if s, ok := rt.ctx.(*exec.Sim); ok {
		rt.elapsed = s.End
	}
}

// TotalReadBytes returns the bytes read from the devices so far.
func (rt *Runtime) TotalReadBytes() int64 { return rt.stats.TotalBytes() }

// CacheStats is the page cache's counter summary (see metrics.CacheStats).
type CacheStats = metrics.CacheStats

// PageCacheStats returns the page cache's hit/miss/evict counters, or the
// zero value when WithPageCache was not set. Misses include pages read
// around the cache, so HitRate never overstates what the cache served.
func (rt *Runtime) PageCacheStats() CacheStats {
	if rt.cfg.PageCache == nil {
		return CacheStats{}
	}
	return rt.cfg.PageCache.StatsDetail()
}

// ReadRequests returns the IO request count so far.
func (rt *Runtime) ReadRequests() int64 { return rt.stats.Requests() }

// BandwidthSeries returns the read bandwidth per timeline bucket in
// bytes/second, or nil when WithTimeline was not set.
func (rt *Runtime) BandwidthSeries() []float64 {
	if rt.tl == nil {
		return nil
	}
	return rt.tl.Series()
}

// MemItem is one named memory-footprint component.
type MemItem struct {
	Name  string
	Bytes int64
}

// MemoryItems returns the tracked memory components (graph index, IO
// buffers, bin space, frontier, algorithm arrays).
func (rt *Runtime) MemoryItems() []MemItem {
	items := rt.mem.Items()
	out := make([]MemItem, len(items))
	for i, it := range items {
		out[i] = MemItem{it.Name, it.Bytes}
	}
	return out
}

// MemoryBytes returns the total tracked memory footprint.
func (rt *Runtime) MemoryBytes() int64 { return rt.mem.Total() }

// ElapsedNs returns the makespan of the last Run (virtual or wall ns).
func (rt *Runtime) ElapsedNs() int64 { return rt.elapsed }

// AvgReadBandwidth returns total read bytes divided by the last Run's
// makespan, in bytes/second — the paper's Figure 1/8 metric.
func (rt *Runtime) AvgReadBandwidth() float64 {
	if rt.elapsed == 0 {
		return 0
	}
	return float64(rt.stats.TotalBytes()) / (float64(rt.elapsed) / 1e9)
}

// MaxReadBandwidth returns the aggregate device bandwidth (the red line).
func (rt *Runtime) MaxReadBandwidth() float64 {
	return rt.profile.RandBytesPerSec * float64(rt.numDev)
}

// GraphFromEdges builds an in-memory graph from an edge list and stripes it
// over the runtime's devices.
func (c *Ctx) GraphFromEdges(name string, n uint32, src, dst []uint32) (*Graph, error) {
	csr, err := graph.Build(n, src, dst)
	if err != nil {
		return nil, err
	}
	g := engine.FromCSR(c.rt.ctx, name, csr, c.rt.numDev, c.rt.profile, c.rt.stats, c.rt.tl, c.rt.devOpts...)
	c.accountGraph(g)
	return g, nil
}

// GraphFromPreset generates a Table II dataset preset (already Scaled) and
// returns the forward and transpose graphs.
func (c *Ctx) GraphFromPreset(p gen.Preset) (out, in *Graph) {
	out, in = engine.BuildPreset(c.rt.ctx, p, c.rt.numDev, c.rt.profile, c.rt.stats, c.rt.tl, c.rt.devOpts...)
	c.accountGraph(out)
	return out, in
}

// LoadGraph opens an on-disk graph (<base>.gr.index / <base>.gr.adj.0 as
// written by cmd/mkgraph) with the adjacency left on storage.
func (c *Ctx) LoadGraph(name, indexPath, adjPath string) (*Graph, error) {
	g, err := engine.FromFiles(c.rt.ctx, name, indexPath, adjPath, c.rt.numDev, c.rt.profile, c.rt.stats, c.rt.tl, c.rt.devOpts...)
	if err != nil {
		return nil, err
	}
	c.accountGraph(g)
	return g, nil
}

// SaveGraph writes an in-memory graph to <base>.gr.index and
// <base>.gr.adj.0 in the format cmd/mkgraph produces and LoadGraph reads.
func (c *Ctx) SaveGraph(g *Graph, base string) error {
	if g.CSR.Adj == nil {
		return fmt.Errorf("blaze: SaveGraph requires an in-memory graph (file-backed graphs are already on disk)")
	}
	return graph.WriteFiles(g.CSR, nil, base)
}

// SaveGraphPair writes a forward graph and its transpose to the four
// artifact files <base>.gr.* and <base>.tgr.* (as BC and WCC inputs).
func (c *Ctx) SaveGraphPair(out, in *Graph, base string) error {
	if out.CSR.Adj == nil || in.CSR.Adj == nil {
		return fmt.Errorf("blaze: SaveGraphPair requires in-memory graphs")
	}
	return graph.WriteFiles(out.CSR, in.CSR, base)
}

func (c *Ctx) accountGraph(g *Graph) {
	c.rt.mem.Set("graph-index", g.CSR.IndexBytes())
}

// RegisterAlgoMemory records algorithm-specific vertex array bytes for the
// memory-footprint accounting (Figure 12).
func (c *Ctx) RegisterAlgoMemory(bytes int64) {
	c.rt.mem.Set("algo-arrays", bytes)
}

// EdgeMap applies scatter/gather/cond to the edges out of frontier f and
// returns the new frontier when output is true, nil otherwise (see
// engine.EdgeMap). A non-nil error means an unrecoverable device failure;
// the pipeline has shut down cleanly, the frontier is nil, and the
// traversal state may be partially updated.
func EdgeMap[V any](c *Ctx, g *Graph, f *VertexSubset,
	scatter func(s, d uint32) V,
	gather func(d uint32, v V) bool,
	cond func(d uint32) bool,
	output bool) (*VertexSubset, error) {
	out, _, err := engine.EdgeMap(c.rt.ctx, c.P, g, f, scatter, gather, cond, output, c.config())
	return out, err
}

// VertexMap applies fn to every vertex in f, returning the vertices for
// which fn was true.
func VertexMap(c *Ctx, f *VertexSubset, fn func(v uint32) bool) *VertexSubset {
	return engine.VertexMap(c.P, f, fn, c.config())
}

// Convergence is the iteration-driver stopping contract shared by the
// built-in queries: zero value = run until the frontier empties,
// MaxIters caps the iteration count, and Tol stops once the query's
// residual (for PageRank, the total unpropagated rank mass) falls to the
// tolerance. See algo.Convergence.
type Convergence = algo.Convergence

// PageRank runs the out-of-core PageRank-delta algorithm (paper
// Algorithm 2) on g under the iteration-driver layer, returning the rank
// vector and the number of iterations the driver ran before the
// convergence contract stopped it. eps is the per-vertex activation
// threshold; cv bounds the drive (Convergence{} iterates until no rank
// moves, Convergence{MaxIters: 20} reproduces the classic fixed cap,
// Tol adds a residual stop).
func (c *Ctx) PageRank(g *Graph, eps float64, cv Convergence) ([]float64, int, error) {
	sys := c.querySystem(g)
	c.RegisterAlgoMemory(algo.AlgoMemoryPageRank(g.NumVertices()))
	return algo.PageRankDrive(algo.DriverFor(sys), sys, c.P, g, eps, cv)
}

// querySystem builds the algo.System the built-in queries run on: the
// single-machine blaze engine by default, or a destination-partitioned
// cluster when WithScaleout(m > 1) is set (the graph needs in-memory
// adjacency for partitioning; EdgeMap surfaces an error otherwise).
func (c *Ctx) querySystem(g *Graph) algo.System {
	if c.rt.machines <= 1 {
		return algo.NewBlaze(c.rt.ctx, c.config())
	}
	cfg := cluster.DefaultConfig(c.rt.machines, g.NumEdges())
	ecfg := c.config()
	cfg.DevicesPerMachine = c.rt.numDev
	cfg.Profile = c.rt.profile
	cfg.ComputeWorkersPerMachine = ecfg.ScatterProcs + ecfg.GatherProcs
	if c.rt.netBW > 0 {
		cfg.NetBandwidth = c.rt.netBW
	}
	if c.rt.netLatNs > 0 {
		cfg.NetLatencyNs = c.rt.netLatNs
	}
	cfg.DevOpts = c.rt.devOpts
	cfg.Engine = ecfg
	return cluster.New(c.rt.ctx, cfg)
}

// QueryReport summarizes one query of a RunConcurrent session: its
// attributed device IO (reads it caused, reads it attached to), its share
// of the page cache's service, and its makespan.
type QueryReport struct {
	ID        int32
	Err       error
	ElapsedNs int64
	// DeviceReadBytes/Pages are device reads this query caused; coalesced
	// attaches to another query's pending read are counted separately in
	// CoalescedPages and never as device reads.
	DeviceReadBytes int64
	DeviceReadPages int64
	CoalescedPages  int64
	// Cache is the query's attributed share of the shared page cache
	// (zero without WithPageCache).
	Cache CacheStats
}

// RunConcurrent loads one graph and executes the query bodies against it
// concurrently as one shared session: one resident graph, one page cache
// (when WithPageCache is set, split fairly between the active queries),
// and one shared IO scheduler per device that coalesces overlapping reads
// across queries and shares bandwidth by deficit round-robin. Under the
// simulated backend the concurrent schedule is deterministic for a fixed
// WithInterleaveSeed.
//
// Every query gets its own Ctx (same Runtime, its own identity); bodies
// run concurrently, so per-query state must not be shared between them.
// Per-query failures land in the reports, and the first non-nil error
// (load or query) is also returned.
func (rt *Runtime) RunConcurrent(load func(*Ctx) (*Graph, error),
	queries ...func(*Ctx, *Graph) error) ([]QueryReport, error) {

	var reports []QueryReport
	var retErr error
	rt.ctx.Run("main", func(p exec.Proc) {
		c := &Ctx{rt: rt, P: p}
		g, err := load(c)
		if err != nil {
			retErr = err
			return
		}
		sess, err := session.New(rt.ctx, g, nil, session.Config{
			Cache:        rt.cfg.PageCache,
			QuantumBytes: rt.drrQuantum,
			NoCoalesce:   rt.noCoalesce,
			NoDRR:        rt.noDRR,
			Seed:         rt.interleaveSeed,
			Stats:        rt.stats,
		})
		if err != nil {
			retErr = err
			return
		}
		bodies := make([]session.Body, len(queries))
		for i := range queries {
			body := queries[i]
			bodies[i] = func(qp exec.Proc, q *session.Query) error {
				qcfg := sess.EngineConfig(rt.cfg, q)
				if rt.cfg.Pool != nil {
					// The run pool is single-query state; concurrent queries
					// each retain their own.
					qcfg.Pool = engine.NewPool()
				}
				return body(&Ctx{rt: rt, P: qp, cfg: &qcfg}, g)
			}
		}
		qs, runErr := sess.Run(p, bodies...)
		if retErr == nil {
			retErr = runErr
		}
		reports = make([]QueryReport, len(qs))
		for i, q := range qs {
			reports[i] = QueryReport{
				ID:              q.ID,
				Err:             q.Err,
				ElapsedNs:       q.ElapsedNs(),
				DeviceReadBytes: q.IO.TotalBytes(),
				DeviceReadPages: q.IO.PagesRead(),
				CoalescedPages:  q.IO.CoalescedPages(),
				Cache:           q.Cache.Snapshot(),
			}
		}
		rt.elapsed = p.Now()
	})
	if s, ok := rt.ctx.(*exec.Sim); ok {
		rt.elapsed = s.End
	}
	return reports, retErr
}

// CoalescedReadPages returns the total pages served by attaching to
// another query's pending read across all RunConcurrent sessions so far
// (0 outside concurrent runs).
func (rt *Runtime) CoalescedReadPages() int64 { return rt.stats.CoalescedPages() }
