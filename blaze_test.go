package blaze_test

import (
	"testing"

	"blaze"
	"blaze/gen"
)

// bfsParents runs BFS through the public API and returns the parent array.
func bfsParents(rt *blaze.Runtime, n uint32, src, dst []uint32, root uint32) []int32 {
	parent := make([]int32, n)
	rt.Run(func(c *blaze.Ctx) {
		g, err := c.GraphFromEdges("t", n, src, dst)
		if err != nil {
			panic(err)
		}
		for i := range parent {
			parent[i] = -1
		}
		parent[root] = int32(root)
		f := blaze.Single(n, root)
		for !f.Empty() {
			f, err = blaze.EdgeMap(c, g, f,
				func(s, d uint32) uint32 { return s },
				func(d uint32, v uint32) bool {
					if parent[d] == -1 {
						parent[d] = int32(v)
						return true
					}
					return false
				},
				func(d uint32) bool { return parent[d] == -1 },
				true)
			if err != nil {
				panic(err)
			}
		}
	})
	return parent
}

func TestPublicAPIQuickstartBothBackends(t *testing.T) {
	src := []uint32{0, 0, 1, 2, 3, 4}
	dst := []uint32{1, 2, 3, 4, 5, 5}
	for _, opts := range [][]blaze.Option{
		{blaze.WithComputeWorkers(4)},
		{blaze.WithComputeWorkers(4), blaze.WithSimulatedTime()},
	} {
		parent := bfsParents(blaze.New(opts...), 7, src, dst, 0)
		want := []int32{0, 0, 0, 1, 2, 3, -1}
		for v := range want {
			if parent[v] != want[v] {
				t.Errorf("parent[%d] = %d, want %d", v, parent[v], want[v])
			}
		}
	}
}

func TestRuntimeMetricsExposed(t *testing.T) {
	rt := blaze.New(blaze.WithSimulatedTime(), blaze.WithComputeWorkers(4), blaze.WithTimeline(1e6))
	p, _ := gen.PresetByShort("r2")
	p = p.Scaled(50000)
	rt.Run(func(c *blaze.Ctx) {
		g, _ := c.GraphFromPreset(p)
		acc := make([]int64, g.NumVertices())
		c.RegisterAlgoMemory(int64(g.NumVertices()) * 8)
		blaze.EdgeMap(c, g, blaze.All(g.NumVertices()),
			func(s, d uint32) int64 { return 1 },
			func(d uint32, v int64) bool { acc[d] += v; return false },
			func(d uint32) bool { return true },
			false)
	})
	if rt.TotalReadBytes() == 0 {
		t.Error("no read bytes recorded")
	}
	if rt.ElapsedNs() == 0 {
		t.Error("no elapsed time recorded")
	}
	if rt.AvgReadBandwidth() <= 0 || rt.AvgReadBandwidth() > rt.MaxReadBandwidth()*1.2 {
		t.Errorf("implausible bandwidth %.2e", rt.AvgReadBandwidth())
	}
	if len(rt.BandwidthSeries()) == 0 {
		t.Error("timeline enabled but empty")
	}
	if rt.MemoryBytes() <= 0 {
		t.Error("memory accounting empty")
	}
	found := map[string]bool{}
	for _, it := range rt.MemoryItems() {
		found[it.Name] = true
	}
	for _, want := range []string{"graph-index", "io-buffers", "bin-space", "algo-arrays"} {
		if !found[want] {
			t.Errorf("memory items missing %q", want)
		}
	}
}

func TestRuntimeOptionsApply(t *testing.T) {
	// Exercise every option constructor; correctness is covered elsewhere,
	// here we check they compose without conflict.
	rt := blaze.New(
		blaze.WithSimulatedTime(),
		blaze.WithComputeWorkers(6),
		blaze.WithBinningRatio(0.25),
		blaze.WithBinCount(64),
		blaze.WithBinSpace(1<<20),
		blaze.WithIOBufferSpace(1<<20),
		blaze.WithDevices(2, blaze.NANDSSD()),
		blaze.WithTimeline(1e6),
	)
	parent := bfsParents(rt, 7, []uint32{0, 1}, []uint32{1, 2}, 0)
	if parent[2] != 1 {
		t.Errorf("parent[2] = %d, want 1", parent[2])
	}
	if rt.MaxReadBandwidth() != 2*blaze.NANDSSD().RandBytesPerSec {
		t.Error("MaxReadBandwidth ignores device count or profile")
	}
}

// TestScaleoutPageRankPublicAPI: WithScaleout routes the built-in queries
// onto the destination-partitioned cluster; the ranks must match the
// single-machine run and the IO stats must cover every machine's array.
func TestScaleoutPageRankPublicAPI(t *testing.T) {
	p, _ := gen.PresetByShort("r2")
	p = p.Scaled(30000)
	run := func(opts ...blaze.Option) []float64 {
		rt := blaze.New(append([]blaze.Option{
			blaze.WithSimulatedTime(), blaze.WithComputeWorkers(4),
		}, opts...)...)
		var ranks []float64
		rt.Run(func(c *blaze.Ctx) {
			g, _ := c.GraphFromPreset(p)
			var err error
			ranks, _, err = c.PageRank(g, 1e-9, blaze.Convergence{MaxIters: 5})
			if err != nil {
				panic(err)
			}
		})
		return ranks
	}
	serial := run()
	scaled := run(blaze.WithScaleout(4), blaze.WithNetwork(100e9/8, 5_000))
	if len(scaled) != len(serial) {
		t.Fatalf("rank lengths differ: %d vs %d", len(scaled), len(serial))
	}
	for v := range serial {
		d := scaled[v] - serial[v]
		if d < -1e-6 || d > 1e-6 {
			t.Fatalf("rank[%d] = %g on 4 machines, %g serial", v, scaled[v], serial[v])
		}
	}
}

func TestLoadGraphFromFiles(t *testing.T) {
	// Round-trip through the on-disk format via the public API.
	dir := t.TempDir()
	p, _ := gen.PresetByShort("tw")
	p = p.Scaled(100000)
	src, dst := p.Generate()

	// Write with one runtime...
	rtW := blaze.New(blaze.WithComputeWorkers(2))
	var wantIn int64
	rtW.Run(func(c *blaze.Ctx) {
		g, err := c.GraphFromEdges("w", p.V, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SaveGraph(g, dir+"/tw"); err != nil {
			t.Fatal(err)
		}
		wantIn = g.NumEdges()
	})

	// ...load and traverse with another.
	rt := blaze.New(blaze.WithComputeWorkers(4))
	rt.Run(func(c *blaze.Ctx) {
		g, err := c.LoadGraph("tw", dir+"/tw.gr.index", dir+"/tw.gr.adj.0")
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		if g.NumEdges() != wantIn {
			t.Fatalf("loaded %d edges, want %d", g.NumEdges(), wantIn)
		}
		var count int64
		blaze.EdgeMap(c, g, blaze.All(g.NumVertices()),
			func(s, d uint32) int64 { return 1 },
			func(d uint32, v int64) bool { count += v; return false },
			func(d uint32) bool { return true },
			false)
		if count != wantIn {
			t.Fatalf("edge scan through file-backed graph saw %d edges, want %d", count, wantIn)
		}
	})
}

func TestVertexMapPublic(t *testing.T) {
	rt := blaze.New(blaze.WithComputeWorkers(2))
	rt.Run(func(c *blaze.Ctx) {
		out := blaze.VertexMap(c, blaze.All(50), func(v uint32) bool { return v < 10 })
		if out.Count() != 10 {
			t.Errorf("VertexMap kept %d, want 10", out.Count())
		}
	})
}

func TestDeviceProfileAccessors(t *testing.T) {
	if blaze.OptaneSSD().RandBytesPerSec <= blaze.NANDSSD().RandBytesPerSec {
		t.Error("Optane should be faster than NAND at random reads")
	}
	half := blaze.OptaneSSD().Scale(0.5)
	if half.RandBytesPerSec != blaze.OptaneSSD().RandBytesPerSec/2 {
		t.Error("profile scaling broken")
	}
}
